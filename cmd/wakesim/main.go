// Command wakesim runs one connected-standby simulation and prints its
// summary, optionally exporting the full event trace.
//
// Usage:
//
//	wakesim [-policy SIMTY] [-workload light|heavy|table3] [-spec file.json]
//	        [-hours 3] [-beta 0.96] [-seed 1] [-system] [-oneshots 6]
//	        [-pushes 0] [-screens 0] [-backend] [-shed 0.05] [-alignedphases]
//	        [-leak apps] [-leaknever apps] [-storm app:period_s[:count]]
//	        [-trace out.csv] [-json out.json] [-timeline MIN] [-anomaly]
//	        [-toempty] [-notrace] [-v]
//	wakesim -fleet N [-fleetspec file.json] [-workers 0] [-json agg.json]
//	        [-policy SIMTY] [-hours 3] [-beta 0.96] [-seed 0]
//	        [-procs P [-checkpoint run.ckpt [-resume]]]
//	wakesim -shardworker
//
// Fleet mode (-fleet and/or -fleetspec) simulates a population of
// heterogeneous devices instead of one: -fleetspec loads a fleet.Spec
// JSON describing the sampling distributions (-fleet overrides its
// device count), every device runs under the spec's base and test
// policies on a worker pool, and the results stream into memory-bounded
// aggregates. -json then writes the deterministic JSON aggregate, which
// is byte-identical across -workers values for a fixed spec. The
// single-run flags that name one concrete device or export one trace
// (-workload, -spec, -toempty, -trace, -timeline, -anomaly, the fault
// flags, -pushes, -screens, -oneshots) conflict with fleet mode.
//
// -procs P shards the fleet across P supervised worker OS processes
// (see internal/shardexec): the summary stays byte-identical, crashed
// or hung workers are retried and eventually quarantined, and
// -checkpoint persists completed shards so an interrupted run restarted
// with -resume re-executes only the missing ones. -checkpoint requires
// -procs, and -resume requires -checkpoint. -shardworker is the child
// half of that protocol — it reads one shard manifest from stdin,
// writes one framed shard aggregate to stdout, and accepts no other
// flags; it is an internal mode the supervisor invokes, not a
// user-facing entry point.
//
// The trace-export flags (-trace, -json, -timeline, -anomaly) work in
// both fixed-horizon and -toempty mode; a run-to-empty trace covers the
// entire discharge. -notrace runs the simulation in the no-trace fast
// mode — no records or trace are retained, every printed metric is
// unchanged — and therefore conflicts with the export flags and -v.
// Fleet runs always use the fast mode (their aggregate is streamed), so
// -notrace is redundant there and rejected.
//
// -backend co-simulates the push/sync backend (see internal/backend):
// every wake pays a reconnect latency, Wi-Fi deliveries become backend
// requests, -shed sets the client-perceived shed probability that drives
// the retry pipeline, and the summary gains the device's request
// counters plus a server-queue replay of its arrival stream.
// -alignedphases installs every app at phase offset = its period — the
// synchronized update-wave scenario the herd experiment studies. In
// fleet mode both knobs live in the fleet spec JSON instead.
//
// The fault flags inject deterministic misbehaviour (see internal/fault):
// -leak holds the named apps' wakelocks past release, -leaknever never
// releases them, and -storm adds a runaway app re-registering a short
// exact alarm. Combine with -anomaly to watch the detector catch them.
//
// Every flag combination is validated before the simulation starts; a
// bad combination exits non-zero with a one-line error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/anomaly"
	"repro/internal/apps"
	"repro/internal/backend"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/shardexec"
	"repro/internal/sim"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// options holds every flag value. Keeping them on a struct (rather than
// package-level pointers) lets the tests parse and validate arbitrary
// argument lists without touching global state.
type options struct {
	// explicitSet records which flags the user actually passed (captured
	// by validate); fleet mode applies -seed/-hours/-beta/-policy on top
	// of the spec file only when they were set explicitly.
	explicitSet map[string]bool

	policy      string
	workload    string
	specFile    string
	hours       float64
	beta        float64
	seed        int64
	system      bool
	oneshots    int
	pushes      float64
	screens     float64
	leak        string
	leakNever   string
	storm       string
	traceCSV    string
	traceJSON   string
	noTrace     bool
	detect      bool
	toEmpty     bool
	timeline    int
	verbose     bool
	fleet       int
	fleetSpec   string
	workers     int
	backend     bool
	shed        float64
	aligned     bool
	procs       int
	checkpoint  string
	resume      bool
	shardworker bool
}

// registerFlags binds the options to a FlagSet with their defaults.
func registerFlags(fs *flag.FlagSet) *options {
	o := &options{}
	fs.StringVar(&o.policy, "policy", "SIMTY", "alignment policy ("+strings.Join(sim.PolicyNames(), ", ")+")")
	fs.StringVar(&o.workload, "workload", "heavy", "workload: light, heavy, or table3")
	fs.StringVar(&o.specFile, "spec", "", "load the workload from a JSON spec file instead (see cmd/tracegen -o)")
	fs.Float64Var(&o.hours, "hours", 3, "standby horizon in hours")
	fs.Float64Var(&o.beta, "beta", sim.DefaultBeta, "grace factor β")
	fs.Int64Var(&o.seed, "seed", 1, "random seed")
	fs.BoolVar(&o.system, "system", true, "install background system alarms")
	fs.IntVar(&o.oneshots, "oneshots", 6, "number of sporadic one-shot alarms")
	fs.Float64Var(&o.pushes, "pushes", 0, "external (GCM-style) wakeups per hour, Poisson arrivals")
	fs.Float64Var(&o.screens, "screens", 0, "screen-on sessions per hour, Poisson arrivals")
	fs.StringVar(&o.leak, "leak", "", "comma-separated apps whose wakelock leaks (held 5 min past release)")
	fs.StringVar(&o.leakNever, "leaknever", "", "comma-separated apps whose wakelock is never released")
	fs.StringVar(&o.storm, "storm", "", "alarm storm spec app:period_s[:count], e.g. rogue:5")
	fs.StringVar(&o.traceCSV, "trace", "", "write the event trace as CSV to this file")
	fs.StringVar(&o.traceJSON, "json", "", "write the event trace (or, in fleet mode, the aggregate) as JSON to this file")
	fs.BoolVar(&o.noTrace, "notrace", false, "run in the no-trace fast mode: skip record retention (metrics are unchanged)")
	fs.BoolVar(&o.detect, "anomaly", false, "scan the run for no-sleep energy bugs")
	fs.BoolVar(&o.toEmpty, "toempty", false, "simulate from full battery until empty (measures standby time directly)")
	fs.IntVar(&o.timeline, "timeline", 0, "render the first N minutes as an ASCII timeline")
	fs.BoolVar(&o.verbose, "v", false, "print per-app delivery counts")
	fs.IntVar(&o.fleet, "fleet", 0, "simulate a fleet of N heterogeneous devices instead of one run")
	fs.StringVar(&o.fleetSpec, "fleetspec", "", "load the fleet population spec from a JSON file (see internal/fleet)")
	fs.IntVar(&o.workers, "workers", 0, "fleet worker pool size (0 = GOMAXPROCS)")
	fs.BoolVar(&o.backend, "backend", false, "co-simulate the push/sync backend (reconnect latency, retry pipeline, server queue)")
	fs.Float64Var(&o.shed, "shed", 0, "backend client-perceived shed rate in [0, 1) (requires -backend)")
	fs.BoolVar(&o.aligned, "alignedphases", false, "install every app at phase offset = its period (the update-wave herd scenario)")
	fs.IntVar(&o.procs, "procs", 0, "shard a fleet run across N supervised worker processes (0 = in-process)")
	fs.StringVar(&o.checkpoint, "checkpoint", "", "persist completed shards to this file (requires -procs)")
	fs.BoolVar(&o.resume, "resume", false, "resume from an existing -checkpoint file, re-running only missing shards")
	fs.BoolVar(&o.shardworker, "shardworker", false, "internal: run as a shard worker (manifest on stdin, framed shard on stdout)")
	return o
}

// fleetMode reports whether the options describe a fleet run.
func (o *options) fleetMode() bool { return o.fleet > 0 || o.fleetSpec != "" }

// validate checks every flag value and combination before anything
// runs. explicit holds the flags the user actually set (flag.Visit), so
// conflicts between a default and an explicit flag don't false-positive.
func (o *options) validate(explicit map[string]bool) error {
	o.explicitSet = explicit
	if o.shardworker {
		// The worker protocol is manifest-on-stdin only; any other
		// explicit flag is a misuse of the internal mode.
		for f := range explicit {
			if f != "shardworker" {
				return fmt.Errorf("-shardworker is an internal mode and takes no other flags (got -%s)", f)
			}
		}
		return nil
	}
	if _, err := sim.PolicyByName(o.policy); err != nil {
		return err
	}
	if o.fleet < 0 {
		return fmt.Errorf("-fleet %d: want a positive device count", o.fleet)
	}
	if o.workers < 0 {
		return fmt.Errorf("-workers %d: want a non-negative worker count", o.workers)
	}
	if o.procs < 0 {
		return fmt.Errorf("-procs %d: want a non-negative process count", o.procs)
	}
	if o.checkpoint != "" && o.procs <= 0 {
		return fmt.Errorf("-checkpoint requires -procs: only the multi-process supervisor writes checkpoints")
	}
	if o.resume && o.checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint: there is nothing to resume from")
	}
	if o.fleetMode() {
		// Fleet mode samples its own per-device workloads, rates, and
		// faults; flags that configure one concrete run conflict with it.
		for _, f := range []string{"workload", "spec", "toempty", "trace", "timeline",
			"anomaly", "leak", "leaknever", "storm", "pushes", "screens", "oneshots", "system", "v",
			"backend", "shed", "alignedphases"} {
			if explicit[f] {
				return fmt.Errorf("-%s does not apply to a fleet run: the fleet spec describes the population", f)
			}
		}
	} else if explicit["workers"] {
		return fmt.Errorf("-workers only applies to fleet mode (-fleet / -fleetspec)")
	} else if explicit["procs"] {
		return fmt.Errorf("-procs only applies to fleet mode (-fleet / -fleetspec)")
	}
	if o.specFile != "" && explicit["workload"] {
		return fmt.Errorf("-spec and -workload are mutually exclusive: the spec file is the workload")
	}
	if o.specFile == "" {
		switch o.workload {
		case "light", "heavy", "table3":
		default:
			return fmt.Errorf("unknown workload %q (want light, heavy, or table3)", o.workload)
		}
	}
	if !(o.hours > 0) || math.IsInf(o.hours, 0) { // !(x>0) also catches NaN
		return fmt.Errorf("-hours %v: want a positive finite horizon", o.hours)
	}
	if !(o.beta > 0 && o.beta < 1) {
		return fmt.Errorf("-beta %v: the grace factor must lie in (0,1)", o.beta)
	}
	if o.oneshots < 0 {
		return fmt.Errorf("-oneshots %d: want a non-negative count", o.oneshots)
	}
	if !(o.pushes >= 0) || math.IsInf(o.pushes, 0) {
		return fmt.Errorf("-pushes %v: want a non-negative finite rate", o.pushes)
	}
	if !(o.screens >= 0) || math.IsInf(o.screens, 0) {
		return fmt.Errorf("-screens %v: want a non-negative finite rate", o.screens)
	}
	if o.timeline < 0 {
		return fmt.Errorf("-timeline %d: want a non-negative minute count", o.timeline)
	}
	if explicit["shed"] && !o.backend {
		return fmt.Errorf("-shed requires -backend: the shed rate parameterizes the backend model")
	}
	if !(o.shed >= 0 && o.shed < 1) {
		return fmt.Errorf("-shed %v: the shed rate must lie in [0, 1)", o.shed)
	}
	if o.noTrace {
		if o.fleetMode() {
			return fmt.Errorf("-notrace does not apply to a fleet run: fleets already use the no-trace fast mode")
		}
		// Everything that consumes the event trace or the raw records
		// needs them retained.
		for _, f := range []string{"trace", "json", "timeline", "anomaly", "v"} {
			if explicit[f] {
				return fmt.Errorf("-%s needs the trace: it conflicts with -notrace", f)
			}
		}
	}
	if _, err := o.faultPlan(); err != nil {
		return err
	}
	return nil
}

// faultPlan translates the fault flags into an injection plan, or nil
// when none are set. App-name validation against the workload happens
// in sim.Config validation, where the installed set is known.
func (o *options) faultPlan() (*fault.Plan, error) {
	var p fault.Plan
	for _, app := range splitApps(o.leak) {
		p.Leaks = append(p.Leaks, fault.Leak{App: app, Mode: fault.LeakLate})
	}
	for _, app := range splitApps(o.leakNever) {
		p.Leaks = append(p.Leaks, fault.Leak{App: app, Mode: fault.LeakNever})
	}
	if o.storm != "" {
		s, err := parseStorm(o.storm)
		if err != nil {
			return nil, err
		}
		p.Storms = append(p.Storms, s)
	}
	if p.Empty() {
		return nil, nil
	}
	return &p, nil
}

func splitApps(list string) []string {
	var out []string
	for _, a := range strings.Split(list, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// parseStorm reads "app:period_s[:count]".
func parseStorm(spec string) (fault.Storm, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 3 || parts[0] == "" {
		return fault.Storm{}, fmt.Errorf("-storm %q: want app:period_s[:count]", spec)
	}
	period, err := strconv.ParseFloat(parts[1], 64)
	if err != nil || !(period > 0) || math.IsInf(period, 0) || period > 1e9 {
		return fault.Storm{}, fmt.Errorf("-storm %q: want a positive period in seconds", spec)
	}
	s := fault.Storm{App: parts[0], Period: simclock.Duration(period * float64(simclock.Second))}
	if s.Period <= 0 {
		return fault.Storm{}, fmt.Errorf("-storm %q: period below the 1 ms clock granularity", spec)
	}
	if len(parts) == 3 {
		count, err := strconv.Atoi(parts[2])
		if err != nil || count < 0 {
			return fault.Storm{}, fmt.Errorf("-storm %q: want a non-negative delivery count", spec)
		}
		s.Count = count
	}
	return s, nil
}

// loadWorkload resolves -spec / -workload into specs and a display name.
func (o *options) loadWorkload() ([]apps.Spec, string, error) {
	if o.specFile != "" {
		f, err := os.Open(o.specFile)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		specs, err := apps.ReadSpecs(f)
		if err != nil {
			return nil, "", err
		}
		return specs, o.specFile, nil
	}
	if o.workload == "light" {
		return apps.LightWorkload(), o.workload, nil
	}
	return apps.HeavyWorkload(), o.workload, nil
}

// config assembles the validated options into a run configuration.
func (o *options) config(specs []apps.Spec, name string) (sim.Config, error) {
	plan, err := o.faultPlan()
	if err != nil {
		return sim.Config{}, err
	}
	cfg := sim.Config{
		Name:                  name,
		Policy:                o.policy,
		Workload:              specs,
		SystemAlarms:          o.system,
		OneShots:              o.oneshots,
		Duration:              simclock.Duration(o.hours * float64(simclock.Hour)),
		Beta:                  o.beta,
		Seed:                  o.seed,
		PushesPerHour:         o.pushes,
		ScreenSessionsPerHour: o.screens,
		Faults:                plan,
		NoTrace:               o.noTrace,
		CollectTrace:          o.traceCSV != "" || o.traceJSON != "" || o.detect || o.timeline > 0,
		AlignedPhases:         o.aligned,
	}
	if o.backend {
		cfg.Backend = &backend.Model{ShedRate: o.shed, Seed: o.seed}
	}
	return cfg, nil
}

func main() {
	opts := registerFlags(flag.CommandLine)
	flag.Parse()
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if err := opts.validate(explicit); err != nil {
		fail(err)
	}
	if opts.shardworker {
		os.Exit(shardexec.WorkerMain(context.Background(), os.Stdin, os.Stdout, os.Stderr))
	}
	if err := opts.run(os.Stdout); err != nil {
		fail(err)
	}
}

// fail prints the one-line error contract: no stack, no usage dump,
// non-zero exit.
func fail(err error) {
	fmt.Fprintf(os.Stderr, "wakesim: %v\n", err)
	os.Exit(1)
}

// run executes the simulation the options describe and writes the
// report to w. Every failure comes back as an error for main's one-line
// exit path.
func (o *options) run(w io.Writer) error {
	if o.fleetMode() {
		return o.runFleet(w)
	}
	specs, name, err := o.loadWorkload()
	if err != nil {
		return err
	}
	cfg, err := o.config(specs, name)
	if err != nil {
		return err
	}

	if o.toEmpty {
		d, err := sim.RunToEmpty(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "policy %s, workload %s: battery empty after %.1f h (%d wakeups, %d pushes)\n",
			d.PolicyName, name, d.StandbyHours, d.Wakeups, d.Pushes)
		// The drain's trace covers the whole discharge, so the export
		// flags work here exactly as in a fixed-horizon run.
		return o.exportArtifacts(w, d.Trace, d.End)
	}

	r, err := sim.Run(cfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "policy %s, workload %s, %.1f h, β=%.2f, seed %d\n",
		r.PolicyName, name, o.hours, cfg.Beta, o.seed)
	fmt.Fprintf(w, "energy: %s\n", r.Energy.String())
	fmt.Fprintf(w, "average power %.1f mW → projected standby %.1f h\n",
		r.Energy.AveragePowerMW(), r.StandbyHours)
	deliveries := r.DelaysAll.PerceptibleN + r.DelaysAll.ImperceptibleN
	fmt.Fprintf(w, "wakeups %d for %d deliveries (%.1f deliveries/wakeup)\n",
		r.FinalWakeups, deliveries, float64(deliveries)/float64(max(1, r.FinalWakeups)))
	fmt.Fprintf(w, "delays: perceptible %.3f%%, imperceptible %.2f%% (apps only)\n",
		r.Delays.PerceptibleMean*100, r.Delays.ImperceptibleMean*100)
	if gaps := r.WakeGaps; gaps.N > 0 {
		fmt.Fprintf(w, "wakeup spacing: min %v, mean %.1fs, max %v\n", gaps.Min, gaps.Mean, gaps.Max)
	}
	if b := r.Backend; b != nil {
		fmt.Fprintf(w, "backend: %d requests (+%d retries), shed %d → redelivered %d, dropped %d, pending %d; %d reconnects\n",
			b.Requests, b.Retries, b.Shed, b.Redelivered, b.Dropped, b.Pending, b.Reconnects)
		bs := backend.Serve(b.Hist, *cfg.Backend)
		fmt.Fprintf(w, "backend load: peak %d arrivals/bucket at %v (%v buckets), server shed %d, max backlog %d\n",
			bs.PeakArrivals, bs.PeakAt, bs.BucketWidth, bs.ServerShed, bs.MaxBacklog)
	}
	if len(r.FaultEvents) > 0 {
		fmt.Fprintf(w, "injected faults: %d event(s)\n", len(r.FaultEvents))
		for _, e := range r.FaultEvents {
			fmt.Fprintf(w, "  %v %s %s: %s\n", e.At, e.App, e.Kind, e.Detail)
		}
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "hardware\twakeups/expected\tratio")
	fmt.Fprintf(tw, "CPU\t%s\t%.2f\n", r.Wakeups.CPU, r.Wakeups.CPU.Ratio())
	fmt.Fprintf(tw, "Speaker&Vibrator\t%s\t%.2f\n", r.SpkVib, r.SpkVib.Ratio())
	for _, c := range []hw.Component{hw.WiFi, hw.WPS, hw.Accelerometer} {
		row := r.Wakeups.Component[c]
		if row.Expected == 0 {
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2f\n", c, row, row.Ratio())
	}
	tw.Flush()

	if o.verbose {
		fmt.Fprintln(w, "\ndeliveries per app:")
		counts := metrics.CountByApp(r.Records)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		for _, s := range specs {
			fmt.Fprintf(tw, "%s\t%d\n", s.Name, counts[s.Name])
		}
		tw.Flush()
	}

	return o.exportArtifacts(w, r.Trace, simclock.Time(r.Config.Duration))
}

// runFleet executes a fleet-mode run: load/assemble the population
// spec, stream the fleet through the aggregator, print the headline
// distributions, and optionally write the deterministic JSON aggregate.
func (o *options) runFleet(w io.Writer) error {
	var spec fleet.Spec
	if o.fleetSpec != "" {
		f, err := os.Open(o.fleetSpec)
		if err != nil {
			return err
		}
		spec, err = fleet.ReadSpec(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	if o.fleet > 0 {
		spec.Devices = o.fleet
	}
	if o.explicitSet["seed"] {
		spec.Seed = o.seed
	}
	if o.explicitSet["hours"] {
		spec.Hours = o.hours
	}
	if o.explicitSet["beta"] {
		spec.Beta = o.beta
	}
	if o.explicitSet["policy"] {
		spec.TestPolicy = o.policy
	}

	var (
		agg       *fleet.Aggregate
		wall      time.Duration
		shardLine string
	)
	if o.procs > 0 {
		res, err := shardexec.Run(context.Background(), spec, shardexec.Options{
			Procs:      o.procs,
			Workers:    o.workers,
			Checkpoint: o.checkpoint,
			Resume:     o.resume,
		})
		if err != nil {
			return err
		}
		agg, wall = res.Agg, res.Wall
		shardLine = fmt.Sprintf("shards: %d over %d procs, %d attempts (%d retries), %d resumed from checkpoint\n",
			res.Shards, o.procs, res.Attempts, res.Retries, res.Resumed)
	} else {
		r, err := fleet.Run(context.Background(), spec, fleet.Options{Workers: o.workers})
		if err != nil {
			return err
		}
		agg, wall = r.Agg, r.Wall
	}
	s := agg.Summary()
	fmt.Fprintf(w, "fleet: %d devices, %s vs %s, %.1f h horizon, seed %d (%.1fs wall)\n",
		s.Devices, s.BasePolicy, s.TestPolicy, s.Hours, s.Seed, wall.Seconds())
	fmt.Fprint(w, shardLine)
	pct := func(name string, d fleet.Dist) {
		fmt.Fprintf(w, "%s: mean %.1f%% ± %.1f (CI95), P50 %.1f%%, P95 %.1f%%, range [%.1f%%, %.1f%%]\n",
			name, 100*d.Mean, 100*d.CI95, 100*d.P50, 100*d.P95, 100*d.Min, 100*d.Max)
	}
	pct("total savings", s.Savings.Total)
	pct("awake savings", s.Savings.Awake)
	pct("standby extension", s.Savings.StandbyExtension)
	pct("wakeup reduction", s.Savings.WakeupReduction)
	fmt.Fprintf(w, "wakeups: %s mean %.0f, %s mean %.0f (P95 %.0f)\n",
		s.BasePolicy, s.Base.Wakeups.Mean, s.TestPolicy, s.Test.Wakeups.Mean, s.Test.Wakeups.P95)
	fmt.Fprintf(w, "%s guarantees: %d perceptible past window, %d past grace\n",
		s.TestPolicy, s.Test.PerceptibleLate, s.Test.GraceLate)
	if s.LeakyDevices > 0 {
		fmt.Fprintf(w, "injected wakelock leaks on %d device(s)\n", s.LeakyDevices)
	}

	if o.traceJSON != "" {
		blob, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			return err
		}
		if err := writeFile(o.traceJSON, func(f *os.File) error {
			_, err := f.Write(append(blob, '\n'))
			return err
		}); err != nil {
			return err
		}
		fmt.Fprintf(w, "aggregate written to %s\n", o.traceJSON)
	}
	return nil
}

// exportArtifacts renders the timeline, anomaly scan, and trace exports
// from a finished run's event log. end is the simulation's final
// virtual time — the horizon for a fixed-duration run, the moment the
// battery died for a run-to-empty discharge.
func (o *options) exportArtifacts(w io.Writer, lg *trace.Logger, end simclock.Time) error {
	if lg == nil {
		return nil
	}

	if o.timeline > 0 {
		to := simclock.Time(simclock.Duration(o.timeline) * simclock.Minute)
		if to > end {
			to = end
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, trace.Timeline(lg.Events(), 0, to, 100))
	}

	if o.detect {
		findings := (&anomaly.Detector{}).Analyze(lg.Events(), end)
		if len(findings) == 0 {
			fmt.Fprintln(w, "\nanomaly scan: clean — no suspicious wakelock holds")
		} else {
			fmt.Fprintf(w, "\nanomaly scan: %d finding(s)\n", len(findings))
			for _, f := range findings {
				fmt.Fprintf(w, "  %s\n", f)
			}
		}
	}

	if o.traceCSV != "" {
		if err := writeFile(o.traceCSV, func(f *os.File) error { return lg.WriteCSV(f) }); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace written to %s (%d events)\n", o.traceCSV, len(lg.Events()))
	}
	if o.traceJSON != "" {
		if err := writeFile(o.traceJSON, func(f *os.File) error { return lg.WriteJSON(f) }); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace written to %s\n", o.traceJSON)
	}
	return nil
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return fn(f)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
