package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/shardexec"
)

// TestMain lets the test binary stand in for wakesimd -shardworker: a
// daemon started with -procs re-executes os.Executable() — this test
// binary — as its shard workers, and the env marker routes those
// children into the worker entry point.
func TestMain(m *testing.M) {
	if os.Getenv("WAKESIMD_TEST_SHARDWORKER") == "1" {
		os.Exit(shardexec.WorkerMain(context.Background(), os.Stdin, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// parse runs an argument list through a fresh FlagSet exactly as main
// does.
func parse(t *testing.T, args ...string) *options {
	t.Helper()
	fs := flag.NewFlagSet("wakesimd", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	o := registerFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return o
}

// TestValidateFlags: every bad value must fail validation up front with
// a one-line error naming the offending flag; legitimate configurations
// must pass.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // error substring; "" means valid
	}{
		{"defaults", nil, ""},
		{"everything tuned", []string{"-addr", "127.0.0.1:9999", "-maxruns", "8", "-workers", "4", "-snapshot", "500", "-maxbody", "4096", "-drain", "5s"}, ""},
		{"sharded", []string{"-procs", "2"}, ""},

		{"empty addr", []string{"-addr", ""}, "-addr"},
		{"zero maxruns", []string{"-maxruns", "0"}, "-maxruns"},
		{"negative maxruns", []string{"-maxruns", "-3"}, "-maxruns"},
		{"negative workers", []string{"-workers", "-1"}, "-workers"},
		{"zero snapshot", []string{"-snapshot", "0"}, "-snapshot"},
		{"zero maxbody", []string{"-maxbody", "0"}, "-maxbody"},
		{"zero drain", []string{"-drain", "0s"}, "-drain"},
		{"negative drain", []string{"-drain", "-5s"}, "-drain"},
		{"negative procs", []string{"-procs", "-2"}, "-procs"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := parse(t, c.args...).validate()
			if c.want == "" {
				if err != nil {
					t.Fatalf("validate(%v) = %v, want nil", c.args, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("validate(%v) = %v, want error naming %q", c.args, err, c.want)
			}
		})
	}
}

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL, a cancel that triggers graceful shutdown, and a channel with
// run's outcome.
func startDaemon(t *testing.T, o *options, out io.Writer) (string, context.CancelFunc, <-chan error) {
	t.Helper()
	o.addr = "127.0.0.1:0"
	addrs := make(chan net.Addr, 1)
	o.onListen = func(a net.Addr) { addrs <- a }
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- o.run(ctx, out) }()
	select {
	case a := <-addrs:
		return "http://" + a.String(), cancel, errc
	case err := <-errc:
		cancel()
		t.Fatalf("daemon died before listening: %v", err)
		return "", nil, nil
	}
}

// waitExit asserts the daemon's run returned cleanly within the window.
func waitExit(t *testing.T, errc <-chan error, window time.Duration) {
	t.Helper()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v, want nil", err)
		}
	case <-time.After(window):
		t.Fatalf("daemon did not exit within %v", window)
	}
}

// TestDaemonEndToEnd boots the daemon, pushes a run and a fleet through
// the full HTTP lifecycle, and shuts it down gracefully.
func TestDaemonEndToEnd(t *testing.T) {
	var out bytes.Buffer
	base, cancel, errc := startDaemon(t, parse(t), &out)
	defer cancel()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	var ids []string
	for _, sub := range []struct{ path, body string }{
		{"/runs", `{"workload": "light", "hours": 0.25}`},
		{"/fleets", `{"devices": 20, "seed": 7, "hours": 0.1, "apps": {"min": 1, "max": 2}}`},
	} {
		resp, err := http.Post(base+sub.path, "application/json", strings.NewReader(sub.body))
		if err != nil {
			t.Fatal(err)
		}
		blob, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST %s = %d: %s", sub.path, resp.StatusCode, blob)
		}
		var run struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(blob, &run); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sub.path+"/"+run.ID)
	}

	for _, path := range ids {
		deadline := time.Now().Add(60 * time.Second)
		for {
			var e struct {
				State string `json:"state"`
				Error string `json:"error"`
			}
			resp, err := http.Get(base + path)
			if err != nil {
				t.Fatal(err)
			}
			blob, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err := json.Unmarshal(blob, &e); err != nil {
				t.Fatalf("decode %s: %v", blob, err)
			}
			if e.State == "done" {
				break
			}
			if e.State == "failed" || e.State == "cancelled" {
				t.Fatalf("%s landed in %s: %s", path, e.State, e.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never finished", path)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	cancel()
	waitExit(t, errc, 30*time.Second)
	for _, want := range []string{"listening on", "shutting down", "stopped"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("daemon log missing %q:\n%s", want, out.String())
		}
	}
}

// TestDaemonDrainDeadlineCancelsInFlight: with a tiny -drain, shutdown
// must not hang on a huge in-flight fleet — the straggler is cancelled
// at the deadline and the daemon still exits cleanly.
func TestDaemonDrainDeadlineCancelsInFlight(t *testing.T) {
	var mu sync.Mutex
	var out bytes.Buffer
	syncOut := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return out.Write(p)
	})
	o := parse(t, "-drain", "200ms")
	base, cancel, errc := startDaemon(t, o, syncOut)
	defer cancel()

	resp, err := http.Post(base+"/fleets", "application/json",
		strings.NewReader(`{"devices": 1000000, "seed": 1, "hours": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /fleets = %d", resp.StatusCode)
	}

	// Give the fleet a moment to actually start, then pull the plug.
	time.Sleep(100 * time.Millisecond)
	cancel()
	waitExit(t, errc, 30*time.Second)
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(out.String(), "drain deadline passed") {
		t.Fatalf("expected the drain-deadline path:\n%s", out.String())
	}
}

// TestDaemonReadyzDuringDrain covers the readiness contract end to end:
// /readyz answers 200 while the daemon accepts work, flips to 503 for
// the whole drain window after shutdown begins (while /healthz stays
// 200 — the daemon is alive, mid-drain, just out of rotation), and the
// daemon still exits cleanly.
func TestDaemonReadyzDuringDrain(t *testing.T) {
	o := parse(t, "-drain", "3s")
	base, cancel, errc := startDaemon(t, o, io.Discard)
	defer cancel()

	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before shutdown = %d, want 200", resp.StatusCode)
	}

	// Park a fleet big enough to outlive the drain deadline, so the
	// drain window is wide open for probing.
	resp, err = http.Post(base+"/fleets", "application/json",
		strings.NewReader(`{"devices": 1000000, "seed": 1, "hours": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /fleets = %d", resp.StatusCode)
	}
	time.Sleep(100 * time.Millisecond) // let the fleet actually start
	cancel()

	// The listener stays up through the drain, so the probe must flip
	// to 503 while liveness holds; connection errors only become
	// acceptable once the (post-drain) listener close begins.
	saw503 := false
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && !saw503 {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			break // listener already closed
		}
		status := resp.StatusCode
		resp.Body.Close()
		if status == http.StatusServiceUnavailable {
			saw503 = true
			hresp, err := http.Get(base + "/healthz")
			if err != nil {
				t.Fatalf("healthz unreachable while readyz answers: %v", err)
			}
			hstatus := hresp.StatusCode
			hresp.Body.Close()
			if hstatus != http.StatusOK {
				t.Fatalf("healthz during drain = %d, want 200", hstatus)
			}
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !saw503 {
		t.Fatal("readyz never answered 503 during the drain window")
	}
	waitExit(t, errc, 30*time.Second)
}

// TestDaemonShardedFleet boots the daemon in multi-process mode (-procs
// 2, the workers re-exec this test binary) and pushes a fleet through
// the full HTTP lifecycle to done.
func TestDaemonShardedFleet(t *testing.T) {
	t.Setenv("WAKESIMD_TEST_SHARDWORKER", "1")
	base, cancel, errc := startDaemon(t, parse(t, "-procs", "2"), io.Discard)
	defer cancel()

	resp, err := http.Post(base+"/fleets", "application/json",
		strings.NewReader(`{"devices": 20, "seed": 7, "hours": 0.1, "apps": {"min": 1, "max": 2}}`))
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /fleets = %d: %s", resp.StatusCode, blob)
	}
	var run struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(blob, &run); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		var e struct {
			State    string `json:"state"`
			Error    string `json:"error"`
			Attempts int    `json:"attempts"`
		}
		resp, err := http.Get(base + "/fleets/" + run.ID)
		if err != nil {
			t.Fatal(err)
		}
		blob, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(blob, &e); err != nil {
			t.Fatalf("decode %s: %v", blob, err)
		}
		if e.State == "done" {
			if e.Attempts != 1 {
				t.Fatalf("attempts = %d, want 1 (20 devices fit one shard)", e.Attempts)
			}
			break
		}
		if e.State == "failed" || e.State == "cancelled" {
			t.Fatalf("sharded fleet landed in %s: %s", e.State, e.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("sharded fleet never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	waitExit(t, errc, 30*time.Second)
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestDaemonListenError: a dead address fails fast with an error, not a
// hang.
func TestDaemonListenError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	o := parse(t)
	o.addr = ln.Addr().String() // already taken
	if err := o.run(context.Background(), io.Discard); err == nil {
		t.Fatal("run on an occupied port succeeded")
	}
}

// TestUsageExample keeps the doc comment's flag names honest: every
// flag named there must exist.
func TestUsageExample(t *testing.T) {
	for _, f := range []string{"addr", "maxruns", "workers", "snapshot", "maxbody", "drain", "procs", "shardworker"} {
		fs := flag.NewFlagSet("wakesimd", flag.ContinueOnError)
		registerFlags(fs)
		if fs.Lookup(f) == nil {
			t.Fatalf("flag -%s missing", f)
		}
	}
}
