// Command wakesimd serves the simulator over HTTP: submit single-device
// runs and whole-fleet specs, poll or stream their progress, and fetch
// the deterministic aggregates — the service form of cmd/wakesim.
//
// Usage:
//
//	wakesimd [-addr :8080] [-maxruns 2] [-workers 0] [-procs 0]
//	         [-snapshot 64] [-maxbody 1048576] [-drain 30s]
//	wakesimd -shardworker
//
// The API (see internal/httpapi):
//
//	POST   /runs               submit one device run
//	POST   /fleets             submit a fleet spec
//	GET    /runs/{id}          poll state, progress, result
//	GET    /fleets/{id}/events SSE: live progress + aggregate snapshots
//	DELETE /fleets/{id}        cancel
//	GET    /healthz            liveness
//	GET    /readyz             readiness (503 while draining)
//
// -procs P executes every fleet through the multi-process shard
// supervisor (internal/shardexec): P worker processes per fleet,
// crash/hang retries with quarantine, "shard" lifecycle events on the
// SSE stream, and a byte-identical aggregate. The workers are this
// same binary re-executed in -shardworker mode — an internal mode that
// reads one shard manifest from stdin, writes one framed shard to
// stdout, and takes no other flags.
//
// At most -maxruns simulations execute at once; excess submissions
// queue. On SIGTERM/SIGINT the daemon stops accepting work, waits up to
// -drain for in-flight runs to finish (cancelling stragglers at the
// deadline), then closes the listener — a supervisor restart never
// tears down a half-aggregated fleet silently. During that drain
// window /readyz answers 503 while /healthz stays 200, so a load
// balancer stops routing new work without the supervisor declaring the
// daemon dead mid-drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/httpapi"
	"repro/internal/runstore"
	"repro/internal/shardexec"
)

// options holds every flag value. Keeping them on a struct (rather than
// package-level pointers) lets the tests parse, validate, and run
// arbitrary configurations without touching global state.
type options struct {
	addr        string
	maxRuns     int
	workers     int
	procs       int
	snapshot    int
	maxBody     int64
	drain       time.Duration
	shardworker bool

	// onListen, when set (by tests), receives the bound address once the
	// listener is up.
	onListen func(net.Addr)
}

// registerFlags binds the options to a FlagSet with their defaults.
func registerFlags(fs *flag.FlagSet) *options {
	o := &options{}
	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.IntVar(&o.maxRuns, "maxruns", runstore.DefaultMaxConcurrent, "maximum simulations executing at once (further submissions queue)")
	fs.IntVar(&o.workers, "workers", 0, "per-simulation worker pool size (0 = GOMAXPROCS)")
	fs.IntVar(&o.snapshot, "snapshot", fleet.DefaultSnapshotEvery, "devices folded between SSE aggregate snapshots")
	fs.Int64Var(&o.maxBody, "maxbody", 1<<20, "maximum request body size in bytes")
	fs.DurationVar(&o.drain, "drain", 30*time.Second, "shutdown grace: how long to let in-flight runs finish")
	fs.IntVar(&o.procs, "procs", 0, "execute fleets across N supervised worker processes (0 = in-process)")
	fs.BoolVar(&o.shardworker, "shardworker", false, "internal: run as a shard worker (manifest on stdin, framed shard on stdout)")
	return o
}

// validate checks every flag value before the listener opens; a bad
// combination exits non-zero with a one-line error.
func (o *options) validate() error {
	if o.addr == "" {
		return fmt.Errorf("-addr: want a non-empty listen address")
	}
	if o.maxRuns < 1 {
		return fmt.Errorf("-maxruns %d: want at least one execution slot", o.maxRuns)
	}
	if o.workers < 0 {
		return fmt.Errorf("-workers %d: want a non-negative worker count", o.workers)
	}
	if o.procs < 0 {
		return fmt.Errorf("-procs %d: want a non-negative process count", o.procs)
	}
	if o.snapshot < 1 {
		return fmt.Errorf("-snapshot %d: want a positive fold interval", o.snapshot)
	}
	if o.maxBody < 1 {
		return fmt.Errorf("-maxbody %d: want a positive byte limit", o.maxBody)
	}
	if o.drain <= 0 {
		return fmt.Errorf("-drain %v: want a positive shutdown grace period", o.drain)
	}
	return nil
}

func main() {
	opts := registerFlags(flag.CommandLine)
	flag.Parse()
	if opts.shardworker {
		if flag.NFlag() > 1 {
			fail(fmt.Errorf("-shardworker is an internal mode and takes no other flags"))
		}
		os.Exit(shardexec.WorkerMain(context.Background(), os.Stdin, os.Stdout, os.Stderr))
	}
	if err := opts.validate(); err != nil {
		fail(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := opts.run(ctx, os.Stdout); err != nil {
		fail(err)
	}
}

// fail prints the one-line error contract: no stack, no usage dump,
// non-zero exit.
func fail(err error) {
	fmt.Fprintf(os.Stderr, "wakesimd: %v\n", err)
	os.Exit(1)
}

// run serves until ctx is cancelled (the signal handler's job), then
// shuts down gracefully: drain the store first — in-flight simulations
// finish or are cancelled at the -drain deadline, and their SSE streams
// end with the terminal frames — then close the listener.
func (o *options) run(ctx context.Context, w io.Writer) error {
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	store := runstore.New(o.maxRuns)
	srv := &http.Server{Handler: httpapi.New(store, httpapi.Options{
		Workers:       o.workers,
		Procs:         o.procs,
		SnapshotEvery: o.snapshot,
		MaxBody:       o.maxBody,
	})}

	fmt.Fprintf(w, "wakesimd: listening on %s (%d execution slots, drain %v)\n", ln.Addr(), o.maxRuns, o.drain)
	if o.onListen != nil {
		o.onListen(ln.Addr())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The listener died under us; abandon in-flight work loudly.
		store.CancelAll()
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}

	fmt.Fprintf(w, "wakesimd: shutting down, draining in-flight runs (up to %v)\n", o.drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	if err := store.Drain(drainCtx); err != nil {
		fmt.Fprintf(w, "wakesimd: drain deadline passed, in-flight runs cancelled (%v)\n", err)
	}

	// Every run is terminal now, so open SSE streams have delivered
	// their final frames and returned; the short deadline only guards
	// against clients that never read.
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		srv.Close()
	}
	fmt.Fprintln(w, "wakesimd: stopped")
	return nil
}
